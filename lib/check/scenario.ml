(* Checkable scenarios (etrees.check): small closed programs over the
   paper's structures, each paired with the monitors that define its
   correctness.  Every [prepare] builds a fresh structure and ledger —
   the explorer re-executes from scratch per interleaving.

   Shapes are kept tractable: enqueuers/dequeuers do [ops] operations
   each; pool dequeues use a single bounded attempt (stop = always)
   so the scenarios themselves cannot hang, while the centralized
   baseline polls unboundedly — exactly the blocking the checker's
   spin detection is there to find. *)

module E = Sim.Engine
module Pool = Core.Elim_pool.Make (E)
module Stack = Core.Elim_stack.Make (E)
module Tree = Core.Elim_tree.Make (E)
module Counter = Core.Inc_dec_counter.Make (E)
module Central = Baselines.Central_pool.Make (E)
module Naive_counter = Sync.Naive_counter.Make (E)
module Spool = Shard.Shard_pool.Make (E)

type t = {
  name : string;
  describe : string;
  make : procs:int -> width:int -> ops:int -> Explore.program;
}

(* Values are tagged by producer so duplicate/phantom detection is
   exact: processor [pid]'s [i]-th enqueue carries [pid * 100 + i]. *)
let value pid i = (pid * 100) + i

(* Probe a structure's residue (engine-level reads) quiescently, under
   a fresh single-processor run after the controlled one finished. *)
let probe f =
  let r = ref 0 in
  let (_ : Sim.stats) =
    Sim.run ~procs:1 ~config:Sim.Memory.uniform_config (fun _ -> r := f ())
  in
  !r

(* Shared shape for the two elimination pools: even pids enqueue [ops]
   values, odd pids attempt [ops] bounded dequeues.  Duplicates and
   phantoms are flagged at the dequeue's exit point; conservation and
   the step property are evaluated at quiescence. *)
let pool_instance ~ops ~mode ~enq ~deq ~residue ~stats =
  let enqueued = ref [] and dequeued = ref [] in
  let exit_faults = ref [] in
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let body pid =
    if pid mod 2 = 0 then
      for i = 0 to ops - 1 do
        let v = value pid i in
        enqueued := v :: !enqueued;
        enq v
      done
    else
      for _ = 1 to ops do
        match deq () with
        | None -> ()
        | Some v ->
            if Hashtbl.mem seen v then
              exit_faults :=
                Monitor.fail "conservation"
                  (Printf.sprintf "value %d dequeued twice (exit-point check)" v)
                :: !exit_faults;
            Hashtbl.replace seen v ();
            dequeued := v :: !dequeued
      done
  in
  let at_quiescence () =
    List.rev !exit_faults
    @ [
        Monitor.conservation ~enqueued:!enqueued ~dequeued:!dequeued
          ~residue:(probe residue);
        Monitor.step_property ~mode (stats ());
      ]
  in
  { Explore.body; at_quiescence }

let elim_pool =
  {
    name = "elim_pool";
    describe = "elimination-tree pool: conservation + pool step property";
    make =
      (fun ~procs ~width ~ops ->
        {
          Explore.name = "elim_pool";
          procs;
          prepare =
            (fun () ->
              let p : int Pool.t = Pool.create ~capacity:procs ~width () in
              pool_instance ~ops ~mode:`Pool
                ~enq:(fun v -> Pool.enqueue p v)
                ~deq:(fun () -> Pool.dequeue ~stop:(fun () -> true) p)
                ~residue:(fun () -> Pool.residue p)
                ~stats:(fun () -> Pool.balancer_stats_by_level p));
        });
  }

(* The reactive pool (docs/ADAPTIVE.md) under the same monitors as
   [elim_pool].  A tiny epoch (every 2 entries) forces adaptation
   decisions inside even these short closed runs, so the checker covers
   traversals that race with spin-window and prism-width changes; the
   clamp band only shrinks (ceiling at the static tuning) to keep the
   interleaving space bounded.  The safety argument being verified:
   conservation and the step property cannot depend on which effective
   width or spin a traversal observed. *)
let adapt =
  {
    name = "adapt";
    describe =
      "reactive elimination pool (2-entry epochs): conservation + pool step \
       property under concurrent spin/width changes";
    make =
      (fun ~procs ~width ~ops ->
        {
          Explore.name = "adapt";
          procs;
          prepare =
            (fun () ->
              let config =
                Adapt.validate_config
                  { Adapt.default with Adapt.period = 2; min_pct = 25;
                    max_pct = 100 }
              in
              let p : int Pool.t =
                Pool.create ~policy:(`Reactive config) ~capacity:procs ~width
                  ()
              in
              pool_instance ~ops ~mode:`Pool
                ~enq:(fun v -> Pool.enqueue p v)
                ~deq:(fun () -> Pool.dequeue ~stop:(fun () -> true) p)
                ~residue:(fun () -> Pool.residue p)
                ~stats:(fun () -> Pool.balancer_stats_by_level p));
        });
  }

let elim_stack =
  {
    name = "elim_stack";
    describe = "stack-like pool: conservation + gap step property";
    make =
      (fun ~procs ~width ~ops ->
        {
          Explore.name = "elim_stack";
          procs;
          prepare =
            (fun () ->
              let s : int Stack.t = Stack.create ~capacity:procs ~width () in
              pool_instance ~ops ~mode:`Gap
                ~enq:(fun v -> Stack.push s v)
                ~deq:(fun () -> Stack.pop ~stop:(fun () -> true) s)
                ~residue:(fun () -> Stack.residue s)
                ~stats:(fun () -> Stack.balancer_stats_by_level s));
        });
  }

(* IncDecCounter scenarios.  Increment-only bursts are quiescently
   consistent: the returned values must be realizable by a sequential
   counter (i.e. exactly {0..n-1}).  Mixed concurrent inc/dec bursts
   are NOT: a decrement may retrace a concurrent increment's path and
   reach the leaf before the increment's fetch&add lands, returning an
   undershot value (the checker exhibits inc->-2/dec->-2 at 2 procs) —
   for those, the quiescent guarantee is the gap step property plus
   balanced elimination pairing, which is what [counter_mixed]
   verifies. *)
let counter_scenario ~name ~describe ~mixed =
  {
    name;
    describe;
    make =
      (fun ~procs ~width ~ops ->
        {
          Explore.name = name;
          procs;
          prepare =
            (fun () ->
              let c = Counter.create ~capacity:procs ~width () in
              let hist = ref [] in
              let conv = function
                | Counter.Slot v -> Some v
                | Counter.Paired -> None
              in
              let body pid =
                for _ = 1 to ops do
                  (* Bind the outcome before touching the ledger: the
                     operation suspends on every shared access, and
                     [hist := op :: !hist] would read [!hist] first
                     (right-to-left), losing concurrent appends. *)
                  let is_inc = (not mixed) || pid mod 2 = 0 in
                  let result =
                    conv (if is_inc then Counter.increment c
                          else Counter.decrement c)
                  in
                  hist := { Monitor.is_inc; result } :: !hist
                done
              in
              let at_quiescence () =
                (if mixed then Monitor.paired_balance (List.rev !hist)
                 else Monitor.quiescent_consistency (List.rev !hist))
                :: [
                     Monitor.step_property ~mode:`Gap
                       (Counter.balancer_stats_by_level c);
                   ]
              in
              { Explore.body; at_quiescence });
        });
  }

let counter =
  counter_scenario ~name:"counter" ~mixed:false
    ~describe:
      "IncDecCounter[w], increments only: quiescent consistency + gap step \
       property"

let counter_mixed =
  counter_scenario ~name:"counter_mixed" ~mixed:true
    ~describe:
      "IncDecCounter[w], concurrent inc/dec: gap step property + balanced \
       elimination pairing (mixed bursts may undershoot return values)"

(* Raw tree traversals: tokens from even pids, anti-tokens from odd
   pids, step property only.  [bug] seeds the test-only balancer
   defect (skip the toggle after an elimination miss); the buggy
   variant sends tokens from every pid — the violation needs three
   tokens meeting a stale prism announcement, not eliminations. *)
let tree_scenario ~name ~describe ~bug ~tokens_only =
  {
    name;
    describe;
    make =
      (fun ~procs ~width ~ops ->
        {
          Explore.name = name;
          procs;
          prepare =
            (fun () ->
              let t : int Tree.t =
                Tree.create ~mode:`Pool ?bug ~capacity:procs
                  (Core.Tree_config.etree width)
              in
              let body pid =
                for i = 0 to ops - 1 do
                  if tokens_only || pid mod 2 = 0 then
                    ignore
                      (Tree.traverse t ~kind:Core.Location.Token
                         ~value:(Some (value pid i)))
                  else
                    ignore (Tree.traverse t ~kind:Core.Location.Anti ~value:None)
                done
              in
              let at_quiescence () =
                [
                  Monitor.step_property ~mode:`Pool
                    (Tree.balancer_stats_by_level t);
                ]
              in
              { Explore.body; at_quiescence });
        });
  }

let tree =
  tree_scenario ~name:"tree" ~bug:None ~tokens_only:false
    ~describe:"raw Pool[w] tree, tokens vs anti-tokens: pool step property"

let tree_buggy =
  tree_scenario ~name:"tree_buggy" ~bug:(Some `Skip_toggle_on_miss)
    ~tokens_only:true
    ~describe:
      "tree with the seeded skip-toggle-on-miss defect: the checker must \
       find a step-property counterexample"

(* The sharded frontend (lib/shard, docs/SHARDING.md) over two width-w
   trees.  Sessions are picked at prepare time so every enqueue homes
   on shard 0 and every dequeue homes on shard 1: the dequeuer's home
   attempt always comes up empty and each successful dequeue is a
   steal, so the checker exhausts the cross-shard path (residue glance,
   probe, foreign-tree traversal) rather than the self-balanced fast
   path.  Verified at quiescence: whole-frontend conservation
   (stealing included) and the pool step property of each shard's own
   balancer tree — a steal moves the dequeuer, never the element, so
   both must hold per shard. *)
let shard =
  {
    name = "shard";
    describe =
      "sharded frontend (2 shards), every dequeue steals: whole-frontend \
       conservation + per-shard pool step property";
    make =
      (fun ~procs ~width ~ops ->
        {
          Explore.name = "shard";
          procs;
          prepare =
            (fun () ->
              let p : int Spool.t =
                Spool.create ~capacity:procs ~width ~shards:2 ()
              in
              let session_on shard =
                let rec find s =
                  if s > 1024 then
                    failwith "shard scenario: no session found"
                  else if Spool.shard_of p ~session:s = shard then s
                  else find (s + 1)
                in
                find 0
              in
              let enq_session = session_on 0 in
              let deq_session = session_on 1 in
              pool_instance ~ops ~mode:`Pool
                ~enq:(fun v -> Spool.enqueue p ~session:enq_session v)
                ~deq:(fun () ->
                  Spool.dequeue ~stop:(fun () -> true) p
                    ~session:deq_session)
                ~residue:(fun () -> Spool.residue p)
                ~stats:(fun () ->
                  List.concat (Spool.balancer_stats_by_shard p)));
        });
  }

(* The centralized pool of Figure 5 (the known-blocking baseline).
   Balanced variant: even pids enqueue, odd pids dequeue the same
   count — dequeues poll but are always eventually fed, so every
   interleaving completes and conservation is verified exhaustively.
   Starved variant: one extra dequeue — no filler exists, the poll
   spins forever, and the checker must report the deadlock. *)
let central_scenario ~name ~describe ~extra_deq =
  {
    name;
    describe;
    make =
      (fun ~procs ~width:_ ~ops ->
        {
          Explore.name = name;
          procs;
          prepare =
            (fun () ->
              let head = Naive_counter.create () in
              let tail = Naive_counter.create () in
              let p : int Central.t =
                Central.create ~poll:1 ~size:8
                  ~head:(Naive_counter.as_counter head)
                  ~tail:(Naive_counter.as_counter tail)
                  ()
              in
              let enqueued = ref [] and dequeued = ref [] in
              let body pid =
                if pid mod 2 = 0 then
                  for i = 0 to ops - 1 do
                    let v = value pid i in
                    enqueued := v :: !enqueued;
                    Central.enqueue p v
                  done
                else
                  for _ = 1 to ops + extra_deq do
                    match Central.dequeue p with
                    | None -> ()
                    | Some v -> dequeued := v :: !dequeued
                  done
              in
              let at_quiescence () =
                [
                  Monitor.conservation ~enqueued:!enqueued ~dequeued:!dequeued
                    ~residue:(probe (fun () -> Central.residue p));
                ]
              in
              { Explore.body; at_quiescence });
        });
  }

let central_pool =
  central_scenario ~name:"central_pool" ~extra_deq:0
    ~describe:
      "centralized pool (Fig. 5), balanced producers/consumers: conservation"

let central_pool_starved =
  central_scenario ~name:"central_pool_starved" ~extra_deq:1
    ~describe:
      "centralized pool with one unfed dequeue: the checker must report the \
       polling deadlock"

let all =
  [
    elim_pool;
    adapt;
    elim_stack;
    counter;
    counter_mixed;
    tree;
    tree_buggy;
    shard;
    central_pool;
    central_pool_starved;
  ]

let find name = List.find_opt (fun s -> s.name = name) all
let names = List.map (fun s -> s.name) all
