(** Stateless exhaustive-interleaving explorer over the simulator's
    controlled scheduler, with sleep-set dynamic partial-order
    reduction (Flanagan–Godefroid), spin-loop deadlock detection, and
    replayable, minimizable counterexample schedules. *)

type instance = {
  body : int -> unit;  (** per-processor program *)
  at_quiescence : unit -> Monitor.verdict list;
      (** monitors over the final state of a completed execution *)
}

type program = { name : string; procs : int; prepare : unit -> instance }
(** [prepare] must build a fresh structure (and ledger) per execution:
    the explorer replays the program from scratch for every explored
    interleaving. *)

type status =
  | Complete
  | Deadlocked of (int * int) list
      (** every unfinished processor spin-blocked: (pid, location id) *)
  | Sleep_blocked  (** pruned by the sleep set: a redundant execution *)
  | Step_budget  (** per-run step cap hit (unbounded spinning) *)

type run = {
  schedule : int array;  (** committed accesses, as chosen pids in order *)
  status : status;
  violations : Monitor.violation list;
      (** deadlock / crash / failed quiescent monitors *)
}

type outcome = {
  runs : int;  (** executions performed (sleep-blocked ones included) *)
  complete : int;
  deadlocks : int;
  sleep_blocked : int;
  budget_hits : int;
  max_depth : int;  (** longest schedule seen (shared accesses) *)
  capped : bool;  (** stopped at [max_interleavings] before exhausting *)
  counterexample : (Monitor.violation * run) option;  (** first found *)
}

val explore :
  ?dpor:bool ->
  ?max_interleavings:int ->
  ?max_steps:int ->
  ?spin_threshold:int ->
  ?seed:int ->
  ?stop_on_violation:bool ->
  program ->
  outcome
(** Systematically execute every (sleep-set-irredundant, when [dpor];
    all, otherwise) interleaving of the program's shared-memory
    accesses, up to [max_interleavings] executions of [max_steps]
    accesses each.  Defaults: DPOR on, 100k executions, 20k steps,
    spin threshold 3, stop at the first violation. *)

val replay : ?seed:int -> ?spin_threshold:int -> ?max_steps:int ->
  program -> int array -> run
(** Re-execute one schedule.  Tolerant: if the forced pid is not
    enabled at some step the smallest enabled one is substituted; the
    returned [run.schedule] is what actually executed. *)

val minimize : ?seed:int -> ?spin_threshold:int -> ?max_steps:int ->
  program -> Monitor.violation -> int array -> int array
(** Greedily coalesce a violating schedule's context switches by
    adjacent transposition, keeping only candidates whose replay still
    violates the same property. *)

val switches : int array -> int
(** Context switches in a schedule. *)

val format_schedule : int array -> string
(** Run-length rendering, e.g. ["0x5,1x3"]. *)

val parse_schedule : string -> int array
(** Inverse of {!format_schedule}; also accepts bare pids ["0,1,0"].
    Raises [Invalid_argument]/[Failure] on malformed input. *)
